// Deterministic causal span tracing: a flight recorder for every capability
// operation (ISSUE 9 tentpole, pillar 1).
//
// Every traced step of a request — syscall service, IKC round trip, relay
// hop, batch container, exchange ask, DTU transit, migration, failover —
// records a Span. Spans form trees: the trace id names the request (derived
// from the originating entity and a per-entity sequence number, never wall
// clock) and the parent id links a span to the step that caused it. Parent
// links travel inside the existing message payloads (MsgBody::trace_id /
// trace_parent), so a spanning obtain's full cross-kernel tree — including
// pipelined relays and kCapBatch containers — is reconstructable from the
// flat span list.
//
// Determinism contract: tracing is observational only. It never schedules
// events, charges cycles, or touches modeled state, so modeled results are
// bit-identical with tracing on or off ("zero modeled-cycle drift"). Span
// contents are pure functions of modeled execution (cycle timestamps,
// per-entity sequence numbers), so the merged span list — and its
// fingerprint — is bit-identical across reruns and across SEMPEROS_THREADS
// settings.
//
// Parallel-engine safety: spans are appended to per-entity ring buffers.
// An entity (a PE / node) executes on exactly one shard, and a shard runs
// on one thread per window, so appends are unsynchronized yet race-free.
// The rings are merged once, after the run, in canonical event-key order
// (start cycle, entity, span id). A full ring drops the span and counts the
// drop — never fatal, never a reallocation on the hot path.
//
// Disabled cost: everything is gated on a Tracer* being attached to the
// platform; the untraced path is a single null-pointer test.
#ifndef SEMPEROS_OBS_TRACE_H_
#define SEMPEROS_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/types.h"

namespace semperos {
namespace obs {

// One value per traced step shape. Names (SpanKindName) are stable — they
// are the `cat` field of the exported Chrome trace and the keys of the
// critical-path breakdown.
enum class SpanKind : uint8_t {
  kRequest = 0,  // end-to-end request (open-loop generator / user syscall)
  kQueue,        // client-side credit wait (arrival -> wire)
  kTransit,      // DTU/NoC wire transit (send -> delivery)
  kSyscall,      // kernel syscall service (arrival -> reply emitted)
  kIkc,          // IKC request service at the receiving kernel
  kIkcRtt,       // sender-side IKC wait (request out -> reply callback)
  kAsk,          // kernel -> party exchange-ask round trip
  kBatch,        // kCapBatch container dispatch
  kRelay,        // pipelined stale-epoch forward hop
  kServe,        // server program request service (recv -> response)
  kMigration,    // VPE migration (task opened -> settled), source kernel
  kFailover,     // FT recovery of one dead kernel at one survivor
  kNumKinds,
};

const char* SpanKindName(SpanKind kind);

struct Span {
  uint64_t trace_id = 0;   // request identity: (origin entity, seq)
  uint64_t span_id = 0;    // (entity, per-entity seq); unique per run
  uint64_t parent_id = 0;  // 0 = root
  Cycles start = 0;        // simulated cycles
  Cycles end = 0;          // >= start
  uint32_t entity = 0;     // NodeId of the PE that recorded the span
  SpanKind kind = SpanKind::kRequest;
  uint16_t op = 0;         // kind-specific discriminator (SyscallOp, IkcOp, ...)
};

struct TraceConfig {
  bool enabled = false;
  // Per-entity ring capacity in spans. Overflow drops (counted).
  uint32_t ring_capacity = 1u << 16;
};

// Per-request critical-path breakdown: a canonical left-to-right walk of the
// span tree. Children are visited in start order; time covered by a child is
// attributed recursively, time between children is the enclosing span's self
// time. By construction the per-kind cycle sums add up to the root span's
// duration exactly — the decomposition is total, so "critical-path cycle sum
// == measured latency" is structural, not approximate.
struct CriticalPath {
  uint64_t trace_id = 0;
  uint64_t root_span = 0;
  Cycles total = 0;                          // root span duration
  Cycles by_kind[static_cast<size_t>(SpanKind::kNumKinds)] = {};
  Cycles self = 0;                           // time not covered by any child
  uint32_t spans = 0;                        // spans in this trace's tree
  uint32_t depth = 0;                        // deepest nesting level
  bool connected = false;                    // every span reachable from root
};

class Tracer {
 public:
  // `entities` is the platform's node count; each node gets its own ring.
  Tracer(uint32_t entities, TraceConfig config);

  bool enabled() const { return config_.enabled; }
  uint32_t entities() const { return static_cast<uint32_t>(rings_.size()); }

  // Mints a new trace id for a request originating at `entity`. Encoded as
  // ((entity + 1) << 40) | seq — a pure function of modeled execution order.
  uint64_t NewTraceId(uint32_t entity);

  // Allocates the next span id for `entity`. Ids are handed out before the
  // span completes so they can travel as parent links while the span is
  // still open; Record() carries the same id back.
  uint64_t NextSpanId(uint32_t entity);

  // Appends a completed span to `span.entity`'s ring. Must be called from
  // the shard executing that entity's events. Drops (and counts) when the
  // ring is full.
  void Record(const Span& span);

  // Total spans dropped to full rings, across entities.
  uint64_t dropped() const;
  // Spans currently recorded, across entities (pre- or post-merge).
  uint64_t recorded() const;

  // Merges every ring in canonical key order (start, entity, span_id).
  // Call after the run has completed; idempotent, and further Record()
  // calls after a merge are rejected with a CHECK.
  const std::vector<Span>& Merged();

  // FNV-1a over every field of every merged span, in canonical order. The
  // determinism suites assert this is bit-identical across reruns and
  // thread counts.
  uint64_t Fingerprint();

  // All merged spans belonging to `trace_id`, in canonical order.
  std::vector<Span> SpansOf(uint64_t trace_id);

  // Critical-path walk of `trace_id`'s tree (see CriticalPath).
  CriticalPath ComputeCriticalPath(uint64_t trace_id);

  // Chrome trace_event JSON ("Complete" X events; open with Perfetto via
  // ui.perfetto.dev or chrome://tracing). Timestamps are simulated cycles
  // exported as microseconds. Returns false when the file can't be written.
  bool WriteChromeTrace(const std::string& path);

 private:
  struct Ring {
    std::vector<Span> spans;   // reserved lazily, capped at ring_capacity
    uint64_t dropped = 0;
    uint64_t next_span_seq = 0;
    uint64_t next_trace_seq = 0;
  };

  TraceConfig config_;
  std::vector<Ring> rings_;
  bool merged_done_ = false;
  std::vector<Span> merged_;
};

// Computes the critical path over an externally assembled span list (all
// spans of one trace). Exposed for trace_summary-style tooling and tests.
CriticalPath ComputeCriticalPathOver(const std::vector<Span>& spans, uint64_t trace_id);

}  // namespace obs
}  // namespace semperos

#endif  // SEMPEROS_OBS_TRACE_H_
