#include "obs/metrics.h"

#include <cstdio>

#include "base/log.h"
#include "core/kernel.h"
#include "core/protocol.h"
#include "sim/engine.h"

namespace semperos {
namespace obs {

namespace {

struct KernelField {
  const char* name;
  MetricKind kind;
  uint64_t KernelStats::* field;
};

// The registry: one row per scalar KernelStats field, in declaration order.
// The static_assert below pins this table to the struct — adding a field
// without a row here fails the build instead of silently vanishing from
// --stats, strict comparison and the platform totals.
constexpr KernelField kKernelFields[] = {
    {"syscalls", MetricKind::kCounter, &KernelStats::syscalls},
    {"obtains", MetricKind::kCounter, &KernelStats::obtains},
    {"delegates", MetricKind::kCounter, &KernelStats::delegates},
    {"revokes", MetricKind::kCounter, &KernelStats::revokes},
    {"derives", MetricKind::kCounter, &KernelStats::derives},
    {"activates", MetricKind::kCounter, &KernelStats::activates},
    {"sessions_opened", MetricKind::kCounter, &KernelStats::sessions_opened},
    {"spanning_obtains", MetricKind::kCounter, &KernelStats::spanning_obtains},
    {"spanning_delegates", MetricKind::kCounter, &KernelStats::spanning_delegates},
    {"spanning_revokes", MetricKind::kCounter, &KernelStats::spanning_revokes},
    {"ikc_sent", MetricKind::kCounter, &KernelStats::ikc_sent},
    {"ikc_received", MetricKind::kCounter, &KernelStats::ikc_received},
    {"ikc_flow_queued", MetricKind::kCounter, &KernelStats::ikc_flow_queued},
    {"caps_created", MetricKind::kCounter, &KernelStats::caps_created},
    {"caps_deleted", MetricKind::kCounter, &KernelStats::caps_deleted},
    {"orphans_cleaned", MetricKind::kCounter, &KernelStats::orphans_cleaned},
    {"pointless_denials", MetricKind::kCounter, &KernelStats::pointless_denials},
    {"invalid_prevented", MetricKind::kCounter, &KernelStats::invalid_prevented},
    {"revoke_reqs_queued", MetricKind::kCounter, &KernelStats::revoke_reqs_queued},
    {"migrations", MetricKind::kCounter, &KernelStats::migrations},
    {"caps_migrated", MetricKind::kCounter, &KernelStats::caps_migrated},
    {"ikc_forwarded", MetricKind::kCounter, &KernelStats::ikc_forwarded},
    {"epoch_updates", MetricKind::kCounter, &KernelStats::epoch_updates},
    {"syscalls_frozen", MetricKind::kCounter, &KernelStats::syscalls_frozen},
    {"hb_sent", MetricKind::kCounter, &KernelStats::hb_sent},
    {"hb_acked", MetricKind::kCounter, &KernelStats::hb_acked},
    {"ft_suspicions", MetricKind::kCounter, &KernelStats::ft_suspicions},
    {"ft_votes", MetricKind::kCounter, &KernelStats::ft_votes},
    {"ft_failovers", MetricKind::kCounter, &KernelStats::ft_failovers},
    {"ft_refusals", MetricKind::kCounter, &KernelStats::ft_refusals},
    {"ft_pes_adopted", MetricKind::kCounter, &KernelStats::ft_pes_adopted},
    {"ft_orphan_roots", MetricKind::kCounter, &KernelStats::ft_orphan_roots},
    {"ft_edges_pruned", MetricKind::kCounter, &KernelStats::ft_edges_pruned},
    {"ft_ikcs_aborted", MetricKind::kCounter, &KernelStats::ft_ikcs_aborted},
    {"ikc_batches_sent", MetricKind::kCounter, &KernelStats::ikc_batches_sent},
    {"ikc_batched_ops", MetricKind::kCounter, &KernelStats::ikc_batched_ops},
    {"ikc_batch_ops_max", MetricKind::kGauge, &KernelStats::ikc_batch_ops_max},
    {"ikc_batch_mixed_epoch", MetricKind::kCounter, &KernelStats::ikc_batch_mixed_epoch},
    {"ikc_relays_pipelined", MetricKind::kCounter, &KernelStats::ikc_relays_pipelined},
    {"ikc_late_replies", MetricKind::kCounter, &KernelStats::ikc_late_replies},
    {"ddl_cache_hits", MetricKind::kCounter, &KernelStats::ddl_cache_hits},
    {"ddl_cache_misses", MetricKind::kCounter, &KernelStats::ddl_cache_misses},
};

constexpr size_t kScalarFields = sizeof(kKernelFields) / sizeof(kKernelFields[0]);

// Completeness pin: 42 scalar uint64 counters + the two per-IKC-op arrays +
// the two uint32 thread gauges (handled explicitly below). If this fires,
// a KernelStats field was added or removed — extend kKernelFields (or the
// explicit entries in ForEachKernelMetric/AccumulateKernelStats) to match.
static_assert(sizeof(KernelStats) ==
                  kScalarFields * sizeof(uint64_t) +
                      2 * kNumIkcOps * sizeof(uint64_t) + 2 * sizeof(uint32_t),
              "KernelStats changed: update the metric registry in obs/metrics.cpp");

std::string IkcOpMetricName(const char* prefix, size_t op) {
  return std::string(prefix) + "." + IkcOpName(static_cast<IkcOp>(op));
}

}  // namespace

void ForEachKernelMetric(const KernelStats& s,
                         const std::function<void(const MetricValue&)>& fn) {
  for (const KernelField& f : kKernelFields) {
    fn({f.name, f.kind, s.*(f.field)});
  }
  for (size_t op = 0; op < kNumIkcOps; ++op) {
    std::string name = IkcOpMetricName("ikc_op_sent", op);
    fn({name.c_str(), MetricKind::kCounter, s.ikc_op_sent[op]});
  }
  for (size_t op = 0; op < kNumIkcOps; ++op) {
    std::string name = IkcOpMetricName("ikc_op_received", op);
    fn({name.c_str(), MetricKind::kCounter, s.ikc_op_received[op]});
  }
  fn({"threads_in_use", MetricKind::kGauge, s.threads_in_use});
  fn({"threads_in_use_max", MetricKind::kGauge, s.threads_in_use_max});
}

size_t KernelMetricCount() { return kScalarFields + 2 * kNumIkcOps + 2; }

void AccumulateKernelStats(KernelStats* into, const KernelStats& from) {
  for (const KernelField& f : kKernelFields) {
    if (f.kind == MetricKind::kGauge) {
      into->*(f.field) = std::max(into->*(f.field), from.*(f.field));
    } else {
      into->*(f.field) += from.*(f.field);
    }
  }
  for (size_t op = 0; op < kNumIkcOps; ++op) {
    into->ikc_op_sent[op] += from.ikc_op_sent[op];
    into->ikc_op_received[op] += from.ikc_op_received[op];
  }
  into->threads_in_use += from.threads_in_use;
  into->threads_in_use_max = std::max(into->threads_in_use_max, from.threads_in_use_max);
}

void ForEachEngineMetric(const EngineStats& s,
                         const std::function<void(const MetricValue&)>& fn) {
  // Pinned like KernelStats: seven scalar counters plus the per-shard vector.
  static_assert(sizeof(EngineStats) ==
                    7 * sizeof(uint64_t) + sizeof(std::vector<uint64_t>),
                "EngineStats changed: update ForEachEngineMetric in obs/metrics.cpp");
  fn({"windows", MetricKind::kCounter, s.windows});
  fn({"fast_forwards", MetricKind::kCounter, s.fast_forwards});
  fn({"solo_windows", MetricKind::kCounter, s.solo_windows});
  fn({"handoffs", MetricKind::kCounter, s.handoffs});
  fn({"handoff_sends", MetricKind::kCounter, s.handoff_sends});
  fn({"handoff_schedules", MetricKind::kCounter, s.handoff_schedules});
  fn({"driver_events", MetricKind::kCounter, s.driver_events});
  for (size_t i = 0; i < s.shard_events.size(); ++i) {
    std::string name = "shard_events." + std::to_string(i);
    fn({name.c_str(), MetricKind::kCounter, s.shard_events[i]});
  }
}

void MetricsTimeline::Sample(Cycles now, const KernelStats& totals) {
  TimelineSample row;
  row.t = now;
  row.values.reserve(KernelMetricCount());
  ForEachKernelMetric(totals,
                      [&row](const MetricValue& m) { row.values.push_back(m.value); });
  samples_.push_back(std::move(row));
}

std::vector<std::string> MetricsTimeline::Names() {
  std::vector<std::string> names;
  names.reserve(KernelMetricCount());
  KernelStats zero;
  ForEachKernelMetric(zero,
                      [&names](const MetricValue& m) { names.emplace_back(m.name); });
  return names;
}

bool MetricsTimeline::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    LOG_ERROR("obs") << "cannot write metrics timeline " << path;
    return false;
  }
  std::fprintf(f, "{\"interval\":%llu,\"names\":[",
               static_cast<unsigned long long>(config_.interval));
  std::vector<std::string> names = Names();
  for (size_t i = 0; i < names.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ",", names[i].c_str());
  }
  std::fputs("],\"samples\":[\n", f);
  for (size_t i = 0; i < samples_.size(); ++i) {
    const TimelineSample& row = samples_[i];
    std::fprintf(f, "%s[%llu", i == 0 ? "" : ",\n",
                 static_cast<unsigned long long>(row.t));
    for (uint64_t v : row.values) {
      std::fprintf(f, ",%llu", static_cast<unsigned long long>(v));
    }
    std::fputs("]", f);
  }
  std::fputs("\n]}\n", f);
  std::fclose(f);
  return true;
}

}  // namespace obs
}  // namespace semperos
