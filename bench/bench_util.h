// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Every binary prints the rows/series of one table or figure from the
// paper's evaluation (§5). Set SEMPEROS_BENCH_FAST=1 to subsample the
// sweeps (useful for CI); the default runs the full grids.
#ifndef SEMPEROS_BENCH_BENCH_UTIL_H_
#define SEMPEROS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace semperos {
namespace bench {

inline bool FastMode() {
  const char* env = std::getenv("SEMPEROS_BENCH_FAST");
  return env != nullptr && *env != '\0' && *env != '0';
}

inline void Header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void Footnote(const std::string& text) { std::printf("  note: %s\n", text.c_str()); }

// Thins a sweep in fast mode: keeps first, last and every `keep`-th point.
template <typename T>
std::vector<T> Sweep(std::vector<T> full, size_t keep = 2) {
  if (!FastMode()) {
    return full;
  }
  std::vector<T> out;
  for (size_t i = 0; i < full.size(); ++i) {
    if (i == 0 || i + 1 == full.size() || i % keep == 0) {
      out.push_back(full[i]);
    }
  }
  return out;
}

}  // namespace bench
}  // namespace semperos

#endif  // SEMPEROS_BENCH_BENCH_UTIL_H_
