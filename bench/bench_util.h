// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Every binary prints the rows/series of one table or figure from the
// paper's evaluation (§5). Set SEMPEROS_BENCH_FAST=1 to subsample the
// sweeps (useful for CI); the default runs the full grids.
#ifndef SEMPEROS_BENCH_BENCH_UTIL_H_
#define SEMPEROS_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/types.h"
#include "workloads/registry.h"

namespace semperos {
namespace bench {

inline bool FastMode() {
  const char* env = std::getenv("SEMPEROS_BENCH_FAST");
  return env != nullptr && *env != '\0' && *env != '0';
}

inline void Header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void Footnote(const std::string& text) { std::printf("  note: %s\n", text.c_str()); }

// Thins a sweep in fast mode: keeps first, last and every `keep`-th point.
template <typename T>
std::vector<T> Sweep(std::vector<T> full, size_t keep = 2) {
  if (!FastMode()) {
    return full;
  }
  std::vector<T> out;
  for (size_t i = 0; i < full.size(); ++i) {
    if (i == 0 || i + 1 == full.size() || i % keep == 0) {
      out.push_back(full[i]);
    }
  }
  return out;
}

// Charges `span` simulated cycles as the iteration's manual time. Every
// figure/table benchmark reports modeled time this way; wall-clock benches
// (bench_simcore) measure real time instead and don't use it.
inline void ReportSpan(benchmark::State& state, Cycles span) {
  state.SetIterationTime(CyclesToSeconds(span));
}

// Reports one iteration from a structured WorkloadResult: `span` becomes the
// manual iteration time and every named metric becomes a benchmark counter
// (google-benchmark serializes counters sorted by name, so insertion order
// doesn't affect the emitted JSON).
inline void Report(benchmark::State& state, Cycles span, const WorkloadResult& result) {
  ReportSpan(state, span);
  for (const WorkloadMetric& metric : result.metrics) {
    state.counters[metric.name] = metric.value;
  }
}

// Shared main(): print the human-readable figures/tables, then hand argv to
// google-benchmark so run_all.sh can request JSON output.
inline int BenchMain(int argc, char** argv, std::initializer_list<void (*)()> prologues) {
  for (void (*fn)() : prologues) {
    fn();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

}  // namespace bench
}  // namespace semperos

// Replaces the once copy-pasted per-binary main(); pass the print functions
// to run before the benchmark pass.
#define SEMPEROS_BENCH_MAIN(...)                                  \
  int main(int argc, char** argv) {                               \
    return semperos::bench::BenchMain(argc, argv, {__VA_ARGS__}); \
  }

#endif  // SEMPEROS_BENCH_BENCH_UTIL_H_
