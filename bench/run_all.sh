#!/usr/bin/env bash
# Run every figure/table benchmark binary and emit one BENCH_<name>.json
# per binary (google-benchmark JSON schema, see docs/benchmarks.md).
#
# Usage: bench/run_all.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build tree containing bench/ binaries (default: build)
#   OUT_DIR    where BENCH_*.json land (default: bench-results)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
OUT_DIR="${2:-${REPO_ROOT}/bench-results}"

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: ${BUILD_DIR}/bench not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

BENCHES=(
  bench_simcore
  bench_table3_capops
  bench_table4_capability_ops
  bench_fig4_chain_revocation
  bench_fig5_tree_revocation
  bench_fig6_parallel_efficiency
  bench_fig7_service_dependence
  bench_fig8_kernel_dependence
  bench_fig9_system_efficiency
  bench_fig10_nginx
  bench_migration
  bench_failover
  bench_ablation
  bench_traffic
)

failed=0
for b in "${BENCHES[@]}"; do
  bin="${BUILD_DIR}/bench/${b}"
  out="${OUT_DIR}/BENCH_${b#bench_}.json"
  if [[ ! -x "${bin}" ]]; then
    echo "skip: ${bin} not built" >&2
    failed=1
    continue
  fi
  echo "== ${b} -> ${out}"
  "${bin}" --benchmark_out="${out}" --benchmark_out_format=json \
    --benchmark_repetitions="${BENCH_REPETITIONS:-1}" || {
    echo "fail: ${b} exited nonzero" >&2
    failed=1
  }
done

# Optional observability post-step (SEMPEROS_TRACE_SUMMARY=1): run a small
# traced traffic window and summarize the span trees next to the bench JSON.
# Tracing is observational only, so this never perturbs the numbers above.
if [[ "${SEMPEROS_TRACE_SUMMARY:-0}" == "1" ]]; then
  sim="${BUILD_DIR}/semperos_sim"
  trace_out="${OUT_DIR}/TRACE_traffic.json"
  if [[ -x "${sim}" ]]; then
    echo "== trace summary -> ${trace_out}"
    "${sim}" traffic --kernels=4 --services=4 --servers=8 --requests=400 \
      --warmup=100 --trace-out="${trace_out}" >/dev/null || {
      echo "fail: traced traffic run exited nonzero" >&2
      failed=1
    }
    if [[ -f "${trace_out}" ]]; then
      python3 "${REPO_ROOT}/tools/trace_summary.py" "${trace_out}" --top=5 || failed=1
    fi
  else
    echo "skip: ${sim} not built, no trace summary" >&2
  fi
fi

echo
echo "Results in ${OUT_DIR}:"
ls -l "${OUT_DIR}"/BENCH_*.json
exit "${failed}"
