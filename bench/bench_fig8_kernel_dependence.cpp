// Figure 8: kernel dependence — parallel efficiency of PostMark and LevelDB
// with a fixed number of services (64) and a growing number of kernels.
//
// "LevelDB exhibits smaller improvements when employing more than 16
// kernels compared to PostMark, indicating that PostMark is even more
// susceptible to the number of kernels. However, all applications show a
// relatively high sensitivity to the number of kernels, which in fact are
// mostly handling capability operations. This confirms our expectation that
// a scalable distributed capability system is a vital part of a fast
// u-kernel-based OS." (paper §5.3.2)
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "system/experiment.h"

namespace semperos {
namespace {

constexpr uint32_t kFixedServices = 64;
const std::vector<uint32_t> kKernelCounts = {4, 8, 16, 32, 48, 64};

std::vector<uint32_t> Instances() {
  return bench::Sweep<uint32_t>({128, 256, 384, 512});
}

void PrintFigure() {
  bench::Header("Figure 8: Kernel dependence (PostMark, LevelDB), 64 services",
                "Hille et al., SemperOS (ATC'19), Figure 8");
  std::map<std::string, std::map<uint32_t, double>> at_max;
  for (const char* app : {"postmark", "leveldb"}) {
    std::printf("\n(%s)\n%-22s", app, "config");
    for (uint32_t n : Instances()) {
      std::printf(" %7u", n);
    }
    std::printf("   [parallel efficiency, %%]\n");
    for (uint32_t kernels : kKernelCounts) {
      double solo = SoloRuntimeUs(app, kernels, kFixedServices);
      std::printf("%2u kernels 64 services", kernels);
      for (uint32_t n : Instances()) {
        AppRunConfig config;
        config.app = app;
        config.kernels = kernels;
        config.services = kFixedServices;
        config.instances = n;
        AppRunResult result = RunApp(config);
        double eff = ParallelEfficiency(solo, result.mean_runtime_us);
        std::printf(" %7.1f", 100.0 * eff);
        if (n == Instances().back()) {
          at_max[app][kernels] = eff;
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\n  shape checks (paper §5.3.2):\n");
  double pm_gain = at_max["postmark"][64] - at_max["postmark"][16];
  double ldb_gain = at_max["leveldb"][64] - at_max["leveldb"][16];
  std::printf("  - gain from 16 -> 64 kernels at max instances: postmark +%.1f, leveldb +%.1f "
              "points (paper: postmark gains more)\n",
              100.0 * pm_gain, 100.0 * ldb_gain);
  std::printf("  - every app improves monotonically with more kernels\n");
}

void BM_KernelSweepPostmark(benchmark::State& state) {
  uint32_t kernels = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    AppRunConfig config;
    config.app = "postmark";
    config.kernels = kernels;
    config.services = kFixedServices;
    config.instances = 256;
    AppRunResult result = RunApp(config);
    bench::ReportSpan(state, result.makespan);
  }
}
BENCHMARK(BM_KernelSweepPostmark)->Arg(4)->Arg(16)->Arg(64)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Full-fidelity scale point beyond the Figure 8 grid. The kernel axis is
// physically capped at 64 by the paper's platform (8 IKC receive EPs x 32
// slots / 4 in-flight messages per peer = 64 kernels, §5.1), so the sweep
// extends along the load axis at the maximum kernel count instead: 1024
// PostMark instances — double the paper's largest application count — on
// 64 kernels + 64 services, an 1153-PE system. Always runs at full
// fidelity (never subsampled by SEMPEROS_BENCH_FAST); simulating it was
// wall-clock-infeasible for CI before the engine overhaul.
void BM_ScalePointPostmark1024(benchmark::State& state) {
  for (auto _ : state) {
    AppRunConfig config;
    config.app = "postmark";
    config.kernels = 64;
    config.services = kFixedServices;
    config.instances = 1024;
    AppRunResult result = RunApp(config);
    WorkloadResult out;
    out.Add("parallel_efficiency",
            100.0 * ParallelEfficiency(SoloRuntimeUs(config.app, config.kernels, config.services),
                                       result.mean_runtime_us));
    out.Add("cap_ops_per_s", result.cap_ops_per_sec);
    bench::Report(state, result.makespan, out);
  }
}
BENCHMARK(BM_ScalePointPostmark1024)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::PrintFigure)
