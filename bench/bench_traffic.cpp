// Open-loop traffic scale points (ROADMAP north star, not a paper figure).
//
// The paper's evaluation is closed-loop (fixed instance counts, makespan);
// this binary is the open-loop counterpart the perf PRs are judged against:
// seeded arrival schedules injected on the simulated clock independent of
// completions, per-request latency percentiles (measured from the scheduled
// arrival, so client-side queueing counts), and a saturation-throughput
// search per scale point (docs/benchmarks.md, "Open-loop traffic").
//
// Three poisson scale points; the last boots a 10129-PE mesh (64 kernels +
// 64 services + 5000 servers + 5000 generators + memory tile) and injects
// 1.04M requests — the "millions of users" regime. Everything reported here
// is simulated time: bit-identical across reruns, machines and
// SEMPEROS_THREADS settings, and gated by tools/bench_compare.py.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "traffic/traffic.h"

namespace semperos {
namespace {

struct ScalePoint {
  uint32_t kernels;
  uint32_t services;
  uint32_t servers;
  double rate_rps;      // below the knee: the latency row stays sustained
  uint64_t warmup;
  uint64_t requests;    // measured arrivals (aggregate)
  double sat_rate_rps;  // saturation-search starting point
  uint64_t sat_warmup;
  uint64_t sat_requests;  // reduced per-probe budget for the search
};

const ScalePoint kPoints[] = {
    {8, 8, 16, 100'000.0, 2'000, 20'000, 100'000.0, 1'000, 10'000},
    {32, 32, 256, 1'500'000.0, 4'000, 100'000, 1'500'000.0, 2'000, 20'000},
    {64, 64, 5000, 4'000'000.0, 40'000, 1'000'000, 4'000'000.0, 8'000, 100'000},
};
constexpr int kScalePoints = 3;
constexpr int kBigPoint = 2;  // the 10k-PE / 1M-request mesh

uint64_t TotalPes(const ScalePoint& p) {
  // kernels + services + one server and one generator PE per connection +
  // the memory tile (RunTraffic's PlatformConfig).
  return p.kernels + p.services + 2ull * p.servers + 1;
}

TrafficConfig PointConfig(const ScalePoint& p) {
  TrafficConfig config;
  config.kernels = p.kernels;
  config.services = p.services;
  config.servers = p.servers;
  config.arrivals.rate_rps = p.rate_rps;
  config.warmup = p.warmup;
  config.requests = p.requests;
  return config;
}

void PrintFigure() {
  bench::Header("Open-loop traffic: latency percentiles under offered load",
                "ROADMAP north star (no paper figure; methodology in docs/benchmarks.md)");
  std::printf("%-8s %8s %12s %12s %10s %10s %10s\n", "point", "PEs", "offered", "throughput",
              "p50", "p99", "p999");
  std::printf("%-8s %8s %12s %12s %10s %10s %10s\n", "", "", "[req/s]", "[req/s]", "[us]",
              "[us]", "[us]");
  // The 10k-PE row costs ~30s of host time; fast mode leaves it to the
  // benchmark pass (it is never subsampled there).
  int rows = bench::FastMode() ? kBigPoint : kScalePoints;
  for (int i = 0; i < rows; ++i) {
    const ScalePoint& p = kPoints[i];
    TrafficResult r = RunTraffic(PointConfig(p));
    std::printf("%-8d %8llu %12.0f %12.0f %10.1f %10.1f %10.1f\n", i,
                static_cast<unsigned long long>(TotalPes(p)), r.offered_rps, r.throughput_rps,
                r.p50_us, r.p99_us, r.p999_us);
  }
  bench::Footnote(
      "latency runs from the scheduled arrival, so generator-side queueing counts");
}

void BM_TrafficOpenLoop(benchmark::State& state) {
  const ScalePoint& p = kPoints[state.range(0)];
  for (auto _ : state) {
    TrafficResult r = RunTraffic(PointConfig(p));
    WorkloadResult out;
    out.Add("p50_us", r.p50_us, "us");
    out.Add("p99_us", r.p99_us, "us");
    out.Add("p999_us", r.p999_us, "us");
    out.Add("mean_us", r.mean_us, "us");
    out.Add("offered_rps", r.offered_rps);
    out.Add("throughput_rps", r.throughput_rps);
    out.Add("injected", static_cast<double>(r.injected));
    out.Add("pes", static_cast<double>(TotalPes(p)));
    bench::Report(state, r.makespan, out);
  }
}
BENCHMARK(BM_TrafficOpenLoop)->DenseRange(0, kScalePoints - 1)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Saturation throughput per scale point: highest offered rate sustained
// within the p99 SLA (throughput >= 95% of offered). The search path is a
// pure function of the config, so saturation_rps is a pinned modeled value.
// Probes run a reduced request budget; the manual time charges the summed
// simulated cost of every probe.
void BM_TrafficSaturation(benchmark::State& state) {
  const ScalePoint& p = kPoints[state.range(0)];
  for (auto _ : state) {
    SaturationConfig config;
    config.traffic = PointConfig(p);
    config.traffic.arrivals.rate_rps = p.sat_rate_rps;
    config.traffic.warmup = p.sat_warmup;
    config.traffic.requests = p.sat_requests;
    SaturationResult r = FindSaturation(config);
    Cycles simulated = 0;
    for (const SaturationProbe& probe : r.probes) {
      simulated += probe.makespan;
    }
    WorkloadResult out;
    out.Add("saturation_rps", r.saturation_rps);
    out.Add("probes", static_cast<double>(r.probes.size()));
    bench::Report(state, simulated, out);
  }
}
BENCHMARK(BM_TrafficSaturation)->DenseRange(0, kScalePoints - 1)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Non-poisson arrival processes at the medium point, pinning the bursty and
// diurnal generator paths. Offered load is set so the *average* rate is
// sustainable while bursts/peaks overdrive the system — the tail inflation
// relative to BM_TrafficOpenLoop/1 is the point of the row.
void BM_TrafficBursty(benchmark::State& state) {
  for (auto _ : state) {
    TrafficConfig config = PointConfig(kPoints[1]);
    config.arrivals.process = ArrivalProcess::kBursty;
    config.arrivals.rate_rps = 400'000.0;
    config.requests = 50'000;
    config.warmup = 2'000;
    TrafficResult r = RunTraffic(config);
    WorkloadResult out;
    out.Add("p50_us", r.p50_us, "us");
    out.Add("p99_us", r.p99_us, "us");
    out.Add("p999_us", r.p999_us, "us");
    out.Add("throughput_rps", r.throughput_rps);
    bench::Report(state, r.makespan, out);
  }
}
BENCHMARK(BM_TrafficBursty)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_TrafficDiurnal(benchmark::State& state) {
  for (auto _ : state) {
    TrafficConfig config = PointConfig(kPoints[1]);
    config.arrivals.process = ArrivalProcess::kDiurnal;
    config.arrivals.rate_rps = 800'000.0;
    config.requests = 50'000;
    config.warmup = 2'000;
    TrafficResult r = RunTraffic(config);
    WorkloadResult out;
    out.Add("p50_us", r.p50_us, "us");
    out.Add("p99_us", r.p99_us, "us");
    out.Add("p999_us", r.p999_us, "us");
    out.Add("throughput_rps", r.throughput_rps);
    bench::Report(state, r.makespan, out);
  }
}
BENCHMARK(BM_TrafficDiurnal)->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

// PostMark request mix (create+write, read, unlink per request) at the two
// smaller points: the write path through the FS services saturates far
// earlier than the nginx document fetch.
void BM_TrafficPostmark(benchmark::State& state) {
  const ScalePoint& p = kPoints[state.range(0)];
  for (auto _ : state) {
    TrafficConfig config = PointConfig(p);
    config.request = "postmark";
    config.arrivals.rate_rps = p.rate_rps * 0.5;
    config.requests = p.requests / 2;
    TrafficResult r = RunTraffic(config);
    WorkloadResult out;
    out.Add("p50_us", r.p50_us, "us");
    out.Add("p99_us", r.p99_us, "us");
    out.Add("p999_us", r.p999_us, "us");
    out.Add("offered_rps", r.offered_rps);
    out.Add("throughput_rps", r.throughput_rps);
    bench::Report(state, r.makespan, out);
  }
}
BENCHMARK(BM_TrafficPostmark)->DenseRange(0, 1)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::PrintFigure)
