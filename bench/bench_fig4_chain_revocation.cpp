// Figure 4: revoking capability chains of varying sizes.
//
// "In the chain revocation benchmark we measure the time to revoke a number
// of capabilities forming a chain. ... A local chain comprises only
// applications managed by one kernel ... The group-spanning chain depicts a
// scenario in which an ill-behaving application repeatedly exchanges a
// capability between two VPEs, which are managed by different kernels. This
// creates a circular dependency between the two involved kernels during
// revocation." (paper §5.2)
//
// Series: local chain (SemperOS), group-spanning chain (SemperOS), local
// chain (M3). Y axis: revocation time in K cycles.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "system/client.h"

namespace semperos {
namespace {

Cycles RevokeChain(uint32_t kernels, KernelMode mode, uint32_t length) {
  // Local chains bounce between two VPEs of one group; the spanning chain
  // bounces between groups (one VPE each, like the paper's two apps).
  DriverRig rig = MakeDriverRig(kernels, kernels == 1 ? 3 : 2, mode);
  std::vector<size_t> hops = kernels == 1 ? std::vector<size_t>{1, 2} : std::vector<size_t>{0, 1};
  CapSel root = rig.BuildChain(length, hops);
  return rig.TimedOp([&](std::function<void()> done) {
    rig.client(0).env().Revoke(root, [done](const SyscallReply& r) {
      CHECK(r.err == ErrCode::kOk);
      done();
    });
  });
}

std::vector<uint32_t> Lengths() {
  return bench::Sweep<uint32_t>({1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
}

void PrintFigure() {
  bench::Header("Figure 4: Revoking capability chains of varying sizes",
                "Hille et al., SemperOS (ATC'19), Figure 4");
  std::printf("%-8s %22s %28s %18s\n", "chain", "local (SemperOS)", "group-spanning (SemperOS)",
              "local (M3)");
  std::printf("%-8s %22s %28s %18s\n", "length", "[K cycles]", "[K cycles]", "[K cycles]");
  double local100 = 0;
  double spanning100 = 0;
  double m3_100 = 0;
  for (uint32_t len : Lengths()) {
    Cycles local = RevokeChain(1, KernelMode::kSemperOSMulti, len);
    Cycles spanning = RevokeChain(2, KernelMode::kSemperOSMulti, len);
    Cycles m3 = RevokeChain(1, KernelMode::kM3SingleKernel, len);
    std::printf("%-8u %22.1f %28.1f %18.1f\n", len, local / 1000.0, spanning / 1000.0,
                m3 / 1000.0);
    if (len == 100) {
      local100 = static_cast<double>(local);
      spanning100 = static_cast<double>(spanning);
      m3_100 = static_cast<double>(m3);
    }
  }
  if (local100 > 0) {
    std::printf("\n  shape checks (paper §5.2):\n");
    std::printf("  - SemperOS local vs M3 at length 100: %.2fx (paper: \"about twice\")\n",
                local100 / m3_100);
    std::printf("  - spanning vs local at length 100:    %.2fx (paper: \"about three times\")\n",
                spanning100 / local100);
  }
}

void BM_ChainLocal(benchmark::State& state) {
  uint32_t len = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    bench::ReportSpan(state, RevokeChain(1, KernelMode::kSemperOSMulti, len));
  }
}
BENCHMARK(BM_ChainLocal)->Arg(10)->Arg(50)->Arg(100)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

void BM_ChainSpanning(benchmark::State& state) {
  uint32_t len = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    bench::ReportSpan(state, RevokeChain(2, KernelMode::kSemperOSMulti, len));
  }
}
BENCHMARK(BM_ChainSpanning)->Arg(10)->Arg(50)->Arg(100)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::PrintFigure)
