// Figure 9: system efficiency of PostMark and SQLite with different
// configurations.
//
// "If we consider the whole system and account for the PEs used by the OS
// with an efficiency of zero, the optimal configurations change. ...
// Instead of showing the efficiency only in relation to the benchmark
// instances executed we relate them to the total number of PEs. By means of
// this metric we can tune a system for throughput and determine the optimal
// number of kernels and services for an application depending on the number
// of PEs available." (paper §5.3.2)
//
// X axis: total PE count (128..640); instances = PEs - kernels - services.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "system/experiment.h"

namespace semperos {
namespace {

struct OsConfig {
  uint32_t kernels;
  uint32_t services;
};

const std::vector<OsConfig> kConfigs = {{8, 8},   {16, 16}, {32, 16},
                                        {32, 32}, {48, 32}, {64, 32}};

std::vector<uint32_t> PeCounts() {
  return bench::Sweep<uint32_t>({128, 256, 384, 512, 640});
}

void PrintFigure() {
  bench::Header("Figure 9: System efficiency (PostMark, SQLite)",
                "Hille et al., SemperOS (ATC'19), Figure 9");
  for (const char* app : {"postmark", "sqlite"}) {
    std::printf("\n(%s)\n%-24s", app, "config \\ total PEs");
    for (uint32_t pes : PeCounts()) {
      std::printf(" %7u", pes);
    }
    std::printf("   [system efficiency, %%]\n");
    std::map<uint32_t, std::pair<double, std::string>> best;
    for (const OsConfig& config : kConfigs) {
      double solo = SoloRuntimeUs(app, config.kernels, config.services);
      char name[64];
      std::snprintf(name, sizeof(name), "%2uK %2uS", config.kernels, config.services);
      std::printf("%2u kernels %2u services ", config.kernels, config.services);
      for (uint32_t pes : PeCounts()) {
        uint32_t os_pes = config.kernels + config.services;
        if (pes <= os_pes + 8) {
          std::printf(" %7s", "-");
          continue;
        }
        uint32_t instances = pes - os_pes;
        AppRunConfig run;
        run.app = app;
        run.kernels = config.kernels;
        run.services = config.services;
        run.instances = instances;
        AppRunResult result = RunApp(run);
        double par_eff = ParallelEfficiency(solo, result.mean_runtime_us);
        double sys_eff =
            SystemEfficiency(par_eff, instances, config.kernels, config.services);
        std::printf(" %7.1f", 100.0 * sys_eff);
        auto it = best.find(pes);
        if (it == best.end() || sys_eff > it->second.first) {
          best[pes] = {sys_eff, name};
        }
      }
      std::printf("\n");
    }
    std::printf("  best configuration per PE count:");
    for (uint32_t pes : PeCounts()) {
      if (best.count(pes) != 0) {
        std::printf("  %u:%s", pes, best[pes].second.c_str());
      }
    }
    std::printf("\n");
  }
  bench::Footnote(
      "the optimal kernel/service mix shifts with the PE budget (paper: SQLite favors 16K16S at "
      "192 PEs but 32K16S at 256 PEs)");
}

void BM_SystemEfficiency(benchmark::State& state) {
  const OsConfig& config = kConfigs[state.range(0)];
  for (auto _ : state) {
    AppRunConfig run;
    run.app = "sqlite";
    run.kernels = config.kernels;
    run.services = config.services;
    run.instances = 256 - config.kernels - config.services;
    AppRunResult result = RunApp(run);
    bench::ReportSpan(state, result.makespan);
  }
}
BENCHMARK(BM_SystemEfficiency)->DenseRange(0, 5)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::PrintFigure)
