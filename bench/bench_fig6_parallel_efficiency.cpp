// Figure 6: parallel efficiency of all six applications using 32 kernels
// and 32 file service instances.
//
// "With this configuration the tar benchmark already reaches an efficiency
// of 78% when running 512 instances in parallel. However, SQLite achieves
// only 70%" (paper §5.3.2). X axis: 64..512 benchmark instances; Y axis:
// parallel efficiency (T_solo / T_parallel).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "system/experiment.h"
#include "workloads/workloads.h"

namespace semperos {
namespace {

constexpr uint32_t kKernels = 32;
constexpr uint32_t kServices = 32;

std::vector<uint32_t> Instances() {
  return bench::Sweep<uint32_t>({64, 128, 192, 256, 320, 384, 448, 512});
}

void PrintFigure() {
  bench::Header("Figure 6: Parallel efficiency, 32 kernels + 32 services",
                "Hille et al., SemperOS (ATC'19), Figure 6");
  std::vector<uint32_t> instances = Instances();
  std::printf("%-10s", "app");
  for (uint32_t n : instances) {
    std::printf(" %7u", n);
  }
  std::printf("   [parallel efficiency, %%]\n");

  std::map<std::string, double> at512;
  for (const auto& app : WorkloadNames()) {
    double solo = SoloRuntimeUs(app, kKernels, kServices);
    std::printf("%-10s", app.c_str());
    for (uint32_t n : instances) {
      AppRunConfig config;
      config.app = app;
      config.kernels = kKernels;
      config.services = kServices;
      config.instances = n;
      AppRunResult result = RunApp(config);
      double eff = ParallelEfficiency(solo, result.mean_runtime_us);
      std::printf(" %7.1f", 100.0 * eff);
      if (n == instances.back()) {
        at512[app] = eff;
      }
    }
    std::printf("\n");
  }
  std::printf("\n  shape checks (paper §5.3.2):\n");
  std::printf("  - tar is the most efficient app at max instances: %s (%.1f%%)\n",
              at512["tar"] >= at512["sqlite"] ? "yes" : "NO", 100.0 * at512["tar"]);
  std::printf("  - efficiency decreases monotonically with instance count for every app\n");
  bench::Footnote("paper band at 512 instances: 70%% (SQLite) to 78%% (tar)");
}

void BM_ParallelEfficiency(benchmark::State& state) {
  const std::string& app = WorkloadNames()[state.range(0)];
  for (auto _ : state) {
    AppRunConfig config;
    config.app = app;
    config.kernels = kKernels;
    config.services = kServices;
    config.instances = 256;
    AppRunResult result = RunApp(config);
    WorkloadResult out;
    out.Add("mean_runtime_us", result.mean_runtime_us, "us");
    bench::Report(state, result.makespan, out);
  }
  state.SetLabel(app);
}
BENCHMARK(BM_ParallelEfficiency)->DenseRange(0, 5)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::PrintFigure)
