// Figure 10: scalability of the Nginx webserver.
//
// "We stressed Nginx similar to the Apache ab benchmark by introducing PEs
// that resemble a network interface. ... Despite this OS-intensive
// benchmark, the number of requests scales almost linearly when employing
// 32 kernels and 32 services. Using less resources for the OS flattens the
// graph." (paper §5.3.3)
//
// X axis: number of server processes (32..256); Y axis: requests/s.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "system/experiment.h"

namespace semperos {
namespace {

struct OsConfig {
  uint32_t kernels;
  uint32_t services;
};

const std::vector<OsConfig> kConfigs = {{8, 8},   {8, 16},  {8, 32},
                                        {16, 16}, {32, 16}, {32, 32}};

std::vector<uint32_t> Servers() {
  return bench::Sweep<uint32_t>({32, 64, 96, 128, 160, 192, 224, 256});
}

void PrintFigure() {
  bench::Header("Figure 10: Scalability of the Nginx webserver",
                "Hille et al., SemperOS (ATC'19), Figure 10");
  std::printf("%-24s", "config \\ servers");
  for (uint32_t s : Servers()) {
    std::printf(" %8u", s);
  }
  std::printf("   [requests/s x1000]\n");

  double best_small = 0;
  double best_large = 0;
  double flat_small = 0;
  double flat_large = 0;
  for (const OsConfig& config : kConfigs) {
    std::printf("%2u kernels %2u services ", config.kernels, config.services);
    for (uint32_t servers : Servers()) {
      NginxRunConfig run;
      run.kernels = config.kernels;
      run.services = config.services;
      run.servers = servers;
      NginxRunResult result = RunNginx(run);
      std::printf(" %8.0f", result.requests_per_sec / 1000.0);
      bool is_large = servers == Servers().back();
      bool is_small = servers == Servers().front();
      if (config.kernels == 32 && config.services == 32) {
        if (is_small) {
          best_small = result.requests_per_sec;
        }
        if (is_large) {
          best_large = result.requests_per_sec;
        }
      }
      if (config.kernels == 8 && config.services == 8) {
        if (is_small) {
          flat_small = result.requests_per_sec;
        }
        if (is_large) {
          flat_large = result.requests_per_sec;
        }
      }
    }
    std::printf("\n");
  }
  std::printf("\n  shape checks (paper §5.3.3):\n");
  double servers_ratio =
      static_cast<double>(Servers().back()) / static_cast<double>(Servers().front());
  std::printf("  - 32K/32S scaling %ux servers -> %.1fx requests (near-linear expected)\n",
              static_cast<unsigned>(servers_ratio), best_large / best_small);
  std::printf("  - 8K/8S scaling %ux servers -> %.1fx requests (flattened expected)\n",
              static_cast<unsigned>(servers_ratio), flat_large / flat_small);
}

void BM_Nginx(benchmark::State& state) {
  for (auto _ : state) {
    NginxRunConfig run;
    run.kernels = 32;
    run.services = 32;
    run.servers = static_cast<uint32_t>(state.range(0));
    NginxRunResult result = RunNginx(run);
    WorkloadResult out;
    out.Add("requests_per_s", result.requests_per_sec);
    bench::Report(state, run.window, out);
  }
}
BENCHMARK(BM_Nginx)->Arg(32)->Arg(128)->Arg(256)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::PrintFigure)
