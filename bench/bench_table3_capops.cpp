// Table 3: runtimes of capability operations (cycles).
//
//     Operation  Scope      SemperOS   M3       Increase
//     Exchange   Local      3597       3250     10.7%
//     Exchange   Spanning   6484       —        —
//     Revoke     Local      1997       1423     40.3%
//     Revoke     Spanning   3876       —        —
//
// Setup per paper §5.2: "we start two applications where the second
// application obtains a capability from the first, followed by a revoke by
// the first application". Group-local uses one kernel (comparable to M3,
// which has exactly one kernel); group-spanning uses two kernels, one
// application each.
//
// The binary prints the reproduced table and then runs the same operations
// under google-benchmark with manual (simulated) time.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "system/client.h"

namespace semperos {
namespace {

struct OpTimes {
  Cycles exchange = 0;
  Cycles revoke = 0;
};

// One exchange + one revoke between client 1 (obtains) and client 0 (owns,
// then revokes). `kernels` = 1 gives the group-local scope.
OpTimes MeasureOnce(uint32_t kernels, KernelMode mode) {
  DriverRig rig = MakeDriverRig(kernels, 2, mode);
  CapSel owner_sel = rig.Grant(0);
  OpTimes times;
  times.exchange = rig.TimedOp([&](std::function<void()> done) {
    rig.client(1).env().Obtain(rig.vpe(0), owner_sel, [done](const SyscallReply& r) {
      CHECK(r.err == ErrCode::kOk);
      done();
    });
  });
  times.revoke = rig.TimedOp([&](std::function<void()> done) {
    rig.client(0).env().Revoke(owner_sel, [done](const SyscallReply& r) {
      CHECK(r.err == ErrCode::kOk);
      done();
    });
  });
  return times;
}

void PrintTable() {
  bench::Header("Table 3: Runtimes of capability operations",
                "Hille et al., SemperOS (ATC'19), Table 3");
  OpTimes local = MeasureOnce(1, KernelMode::kSemperOSMulti);
  OpTimes spanning = MeasureOnce(2, KernelMode::kSemperOSMulti);
  OpTimes m3 = MeasureOnce(1, KernelMode::kM3SingleKernel);

  std::printf("%-10s %-9s %10s %8s %10s   %s\n", "Operation", "Scope", "SemperOS", "M3",
              "Increase", "(paper: SemperOS / M3 / increase)");
  std::printf("%-10s %-9s %10llu %8llu %9.1f%%   (3597 / 3250 / 10.7%%)\n", "Exchange", "Local",
              (unsigned long long)local.exchange, (unsigned long long)m3.exchange,
              100.0 * (double(local.exchange) - double(m3.exchange)) / double(m3.exchange));
  std::printf("%-10s %-9s %10llu %8s %10s   (6484 / - / -)\n", "Exchange", "Spanning",
              (unsigned long long)spanning.exchange, "-", "-");
  std::printf("%-10s %-9s %10llu %8llu %9.1f%%   (1997 / 1423 / 40.3%%)\n", "Revoke", "Local",
              (unsigned long long)local.revoke, (unsigned long long)m3.revoke,
              100.0 * (double(local.revoke) - double(m3.revoke)) / double(m3.revoke));
  std::printf("%-10s %-9s %10llu %8s %10s   (3876 / - / -)\n", "Revoke", "Spanning",
              (unsigned long long)spanning.revoke, "-", "-");
  bench::Footnote("cycles at 2 GHz; SemperOS pays DDL-key decoding over M3's plain pointers");
}

void BM_ExchangeLocal(benchmark::State& state) {
  for (auto _ : state) {
    OpTimes t = MeasureOnce(1, KernelMode::kSemperOSMulti);
    bench::ReportSpan(state, t.exchange);
  }
}
BENCHMARK(BM_ExchangeLocal)->UseManualTime()->Iterations(3)->Unit(benchmark::kMicrosecond);

void BM_ExchangeSpanning(benchmark::State& state) {
  for (auto _ : state) {
    OpTimes t = MeasureOnce(2, KernelMode::kSemperOSMulti);
    bench::ReportSpan(state, t.exchange);
  }
}
BENCHMARK(BM_ExchangeSpanning)->UseManualTime()->Iterations(3)->Unit(benchmark::kMicrosecond);

void BM_RevokeLocal(benchmark::State& state) {
  for (auto _ : state) {
    OpTimes t = MeasureOnce(1, KernelMode::kSemperOSMulti);
    bench::ReportSpan(state, t.revoke);
  }
}
BENCHMARK(BM_RevokeLocal)->UseManualTime()->Iterations(3)->Unit(benchmark::kMicrosecond);

void BM_RevokeSpanning(benchmark::State& state) {
  for (auto _ : state) {
    OpTimes t = MeasureOnce(2, KernelMode::kSemperOSMulti);
    bench::ReportSpan(state, t.revoke);
  }
}
BENCHMARK(BM_RevokeSpanning)->UseManualTime()->Iterations(3)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::PrintTable)
