// Figure 7: service dependence — parallel efficiency of tar and SQLite with
// a fixed number of kernels (64) and a growing number of services.
//
// "To determine the number of services required to scale an application we
// set the number of kernels to a high number and then gradually increase
// the number of services. ... The tar benchmark is not very dependent on
// the filesystem service ... SQLite shows a higher dependence on the number
// of services. For example, increasing the number of service instances from
// 16 to 32 leads to further improvement of 9 percent points." (paper §5.3.2)
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "system/experiment.h"

namespace semperos {
namespace {

constexpr uint32_t kKernels = 64;
const std::vector<uint32_t> kServices = {4, 8, 16, 32, 48, 64};

std::vector<uint32_t> Instances() {
  return bench::Sweep<uint32_t>({128, 256, 384, 512});
}

void PrintFigure() {
  bench::Header("Figure 7: Service dependence (tar, SQLite), 64 kernels",
                "Hille et al., SemperOS (ATC'19), Figure 7");
  std::map<uint32_t, double> sqlite512;
  for (const char* app : {"tar", "sqlite"}) {
    std::printf("\n(%s)\n%-22s", app, "config");
    for (uint32_t n : Instances()) {
      std::printf(" %7u", n);
    }
    std::printf("   [parallel efficiency, %%]\n");
    for (uint32_t services : kServices) {
      double solo = SoloRuntimeUs(app, kKernels, services);
      std::printf("64 kernels %2u services", services);
      for (uint32_t n : Instances()) {
        AppRunConfig config;
        config.app = app;
        config.kernels = kKernels;
        config.services = services;
        config.instances = n;
        AppRunResult result = RunApp(config);
        double eff = ParallelEfficiency(solo, result.mean_runtime_us);
        std::printf(" %7.1f", 100.0 * eff);
        if (std::string(app) == "sqlite" && n == Instances().back()) {
          sqlite512[services] = eff;
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\n  shape checks (paper §5.3.2):\n");
  if (sqlite512.count(16) != 0 && sqlite512.count(32) != 0) {
    std::printf("  - SQLite, 16 -> 32 services at max instances: +%.1f points (paper: +9)\n",
                100.0 * (sqlite512[32] - sqlite512[16]));
  }
  std::printf("  - more services never hurt; tar saturates earlier than SQLite\n");
}

void BM_ServiceSweepSqlite(benchmark::State& state) {
  uint32_t services = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    AppRunConfig config;
    config.app = "sqlite";
    config.kernels = kKernels;
    config.services = services;
    config.instances = 256;
    AppRunResult result = RunApp(config);
    bench::ReportSpan(state, result.makespan);
  }
}
BENCHMARK(BM_ServiceSweepSqlite)->Arg(4)->Arg(16)->Arg(64)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::PrintFigure)
