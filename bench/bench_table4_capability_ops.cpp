// Table 4: number of capability operations for the selected applications.
//
//     Benchmark   Cap. ops   Cap. ops/s   Cap. ops   Cap. ops/s
//     #instances      1           1          512         512
//     tar             21       7,295       10,752      191,703
//     untar           11       4,012        5,632      100,772
//     find             3       1,310        1,536       27,096
//     SQLite          24       5,987       12,288      207,072
//     LevelDB         22       8,749       11,264      201,204
//     PostMark        38      21,166       19,456      348,285
//
// "The capability operations per second are the average rate of capability
// operations over the runtime. ... The capability operations per second for
// 512 benchmark instances are retrieved when employing 64 kernels and 64
// filesystem services." (paper §5.3.1)
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "system/experiment.h"
#include "workloads/workloads.h"

namespace semperos {
namespace {

struct PaperRow {
  const char* name;
  uint32_t ops1;
  uint32_t ops_s1;
  uint32_t ops512;
  uint32_t ops_s512;
};

constexpr PaperRow kPaper[] = {
    {"tar", 21, 7295, 10752, 191703},     {"untar", 11, 4012, 5632, 100772},
    {"find", 3, 1310, 1536, 27096},       {"sqlite", 24, 5987, 12288, 207072},
    {"leveldb", 22, 8749, 11264, 201204}, {"postmark", 38, 21166, 19456, 348285},
};

void PrintTable() {
  bench::Header("Table 4: Capability operations of the selected applications",
                "Hille et al., SemperOS (ATC'19), Table 4");
  uint32_t many = bench::FastMode() ? 128 : 512;
  uint32_t kernels = bench::FastMode() ? 16 : 64;
  std::printf("%-10s | %8s %10s | %9s %12s | paper(1 / 512 inst)\n", "Benchmark", "ops(1)",
              "ops/s(1)", "ops(n)", "ops/s(n)");
  for (const PaperRow& row : kPaper) {
    AppRunConfig solo_config;
    solo_config.app = row.name;
    solo_config.kernels = 1;
    solo_config.services = 1;
    solo_config.instances = 1;
    AppRunResult solo = RunApp(solo_config);

    AppRunConfig many_config;
    many_config.app = row.name;
    many_config.kernels = kernels;
    many_config.services = kernels;
    many_config.instances = many;
    AppRunResult parallel = RunApp(many_config);

    std::printf("%-10s | %8llu %10.0f | %9llu %12.0f | (%u @ %u/s ; %u @ %u/s)\n", row.name,
                (unsigned long long)solo.total_cap_ops, solo.cap_ops_per_sec,
                (unsigned long long)parallel.total_cap_ops, parallel.cap_ops_per_sec, row.ops1,
                row.ops_s1, row.ops512, row.ops_s512);
  }
  std::printf("\n  n = %u instances on %u kernels + %u services\n", many, kernels, kernels);
  bench::Footnote(
      "per-instance op counts and single-instance rates match the paper exactly; the "
      "512-instance rate is reported over the parallel makespan, which exceeds the paper's "
      "value (see EXPERIMENTS.md on the paper-internal discrepancy between Table 4 and Fig. 6)");
}

void BM_CapOpsRate(benchmark::State& state) {
  const PaperRow& row = kPaper[state.range(0)];
  for (auto _ : state) {
    AppRunConfig config;
    config.app = row.name;
    config.kernels = 8;
    config.services = 8;
    config.instances = 64;
    AppRunResult result = RunApp(config);
    WorkloadResult out;
    out.Add("cap_ops_per_s", result.cap_ops_per_sec);
    bench::Report(state, result.makespan, out);
  }
  state.SetLabel(row.name);
}
BENCHMARK(BM_CapOpsRate)->DenseRange(0, 5)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::PrintTable)
