// Ablations of the design choices DESIGN.md calls out.
//
// Not a paper figure — quantifies how the reproduction's knobs shape the
// headline results:
//  (a) revocation message batching (the paper's own §5.2 future-work idea)
//      against Figure 5's tree revocation;
//  (b) the DDL-decode cost that separates SemperOS from the M3 baseline
//      (Table 3's +10.7% / +40.3% columns);
//  (c) the per-peer in-flight window M_inflight of §4.1;
//  (d) NoC link contention modelling;
//  (e) capability-IKC batching + pipelined walks + the remote-DDL cache
//      (--cap-batching) against the Figure 8 observation that kernels are
//      "mostly handling capability operations".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "system/client.h"
#include "system/experiment.h"

namespace semperos {
namespace {

Cycles TreeRevoke(uint32_t children, bool batching) {
  PlatformConfig pc;
  pc.kernels = 13;
  pc.users = children + 1;
  pc.revoke_batching = batching;
  DriverRig rig = MakeDriverRig(pc);
  CapSel root = rig.BuildTree(children);
  return rig.TimedOp([&](std::function<void()> done) {
    rig.client(0).env().Revoke(root, [done](const SyscallReply& r) {
      CHECK(r.err == ErrCode::kOk);
      done();
    });
  });
}

void AblationBatching() {
  bench::Header("Ablation (a): revocation message batching",
                "paper §5.2: \"we believe that this can be further improved by the use of "
                "message batching\"");
  std::printf("%-10s %16s %16s %10s\n", "children", "unbatched [us]", "batched [us]", "speedup");
  for (uint32_t n : bench::Sweep<uint32_t>({16, 32, 64, 96, 128})) {
    Cycles plain = TreeRevoke(n, false);
    Cycles batched = TreeRevoke(n, true);
    std::printf("%-10u %16.2f %16.2f %9.2fx\n", n, CyclesToMicros(plain),
                CyclesToMicros(batched), double(plain) / double(batched));
  }
  bench::Footnote("batching sends one request per peer kernel instead of one per child");
}

Cycles LocalExchange(Cycles ddl_decode) {
  PlatformConfig pc;
  pc.kernels = 1;
  pc.users = 2;
  pc.timing.ddl_decode = ddl_decode;
  DriverRig rig = MakeDriverRig(pc);
  CapSel owner_sel = rig.Grant(0);
  return rig.TimedOp([&](std::function<void()> done) {
    rig.client(1).env().Obtain(rig.vpe(0), owner_sel, [done](const SyscallReply& r) {
      CHECK(r.err == ErrCode::kOk);
      done();
    });
  });
}

void AblationDdl() {
  bench::Header("Ablation (b): DDL key-decode cost",
                "Table 3: \"Analyzing the DDL key ... introduces overhead in the local case\"");
  std::printf("%-18s %18s %14s\n", "ddl_decode [cyc]", "local exchange", "vs M3 (+%)");
  Cycles m3 = LocalExchange(0);
  for (Cycles ddl : {0u, 58u, 115u, 230u, 460u}) {
    Cycles t = LocalExchange(ddl);
    std::printf("%-18llu %18llu %13.1f%%\n", (unsigned long long)ddl, (unsigned long long)t,
                100.0 * (double(t) / double(m3) - 1.0));
  }
  bench::Footnote("115 cycles x 3 decodes reproduces the paper's +10.7%");
}

Cycles SpanningChainRevoke(uint32_t inflight, uint32_t length) {
  PlatformConfig pc;
  pc.kernels = 2;
  pc.users = 2;
  pc.max_inflight = inflight;
  DriverRig rig = MakeDriverRig(pc);
  CapSel root = rig.BuildChain(length, {0, 1});
  return rig.TimedOp([&](std::function<void()> done) {
    rig.client(0).env().Revoke(root, [done](const SyscallReply& r) {
      CHECK(r.err == ErrCode::kOk);
      done();
    });
  });
}

void AblationInflight() {
  bench::Header("Ablation (c): in-flight window per peer kernel (M_inflight)",
                "paper §4.1: \"we limit the number of in-flight messages to four\"");
  std::printf("%-12s %26s\n", "M_inflight", "spanning chain(40) [us]");
  for (uint32_t w : {1u, 2u, 4u, 8u}) {
    Cycles t = SpanningChainRevoke(w, 40);
    std::printf("%-12u %26.2f\n", w, CyclesToMicros(t));
  }
  bench::Footnote("credits return at dispatch, so the window barely gates nested revocations; "
                  "it exists to bound receive-slot usage (64-kernel limit)");
}

void AblationContention() {
  bench::Header("Ablation (d): NoC link-contention model",
                "per-link FIFO queueing vs unloaded latencies");
  for (bool contention : {true, false}) {
    AppRunConfig config;
    config.app = "postmark";
    config.kernels = 8;
    config.services = 8;
    config.instances = 128;
    // Piggyback on RunApp by flipping the default NocConfig via timing? The
    // harness builds its own platform; run the microscale variant directly.
    PlatformConfig pc;
    pc.kernels = 8;
    pc.users = 64;
    pc.noc.model_contention = contention;
    DriverRig rig = MakeDriverRig(pc);
    // 64 concurrent spanning obtains from one hot owner.
    CapSel owner_sel = rig.Grant(0);
    int done = 0;
    Cycles t0 = rig.p().sim().Now();
    for (size_t i = 1; i < 64; ++i) {
      rig.client(i).env().Obtain(rig.vpe(0), owner_sel, [&done](const SyscallReply& r) {
        CHECK(r.err == ErrCode::kOk);
        done++;
      });
    }
    rig.p().RunToCompletion();
    std::printf("  contention=%s: 63 concurrent obtains drained in %.2f us (queueing %llu cyc)\n",
                contention ? "on " : "off", CyclesToMicros(rig.p().sim().Now() - t0),
                (unsigned long long)rig.p().noc().stats().total_queueing);
  }
}

// The cross-kernel hot-owner storm: every remote client obtains the same
// capability from client 0 concurrently, so each remote kernel has several
// OBTAIN_REQs (and the owner several acks per peer) eligible for one
// container. This is the traffic Figure 8 blames for kernel dependence —
// the app traces keep sessions group-local, so the chatter optimisation is
// invisible there and the storm isolates it instead.
struct ChatterRun {
  Cycles span = 0;
  KernelStats stats;
};

ChatterRun ObtainStorm(uint32_t kernels, int cap_batching) {
  PlatformConfig pc;
  pc.kernels = kernels;
  pc.users = 8 * kernels;
  pc.cap_batching = cap_batching;
  DriverRig rig = MakeDriverRig(pc);
  CapSel owner_sel = rig.Grant(0);
  int done = 0;
  int expected = 0;
  Cycles t0 = rig.p().sim().Now();
  for (size_t i = 1; i < rig.clients.size(); ++i) {
    if (rig.kernel_of_client(i) == rig.kernel_of_client(0)) {
      continue;  // only spanning obtains: the local ones never touch IKC
    }
    ++expected;
    rig.client(i).env().Obtain(rig.vpe(0), owner_sel, [&done](const SyscallReply& r) {
      CHECK(r.err == ErrCode::kOk);
      done++;
    });
  }
  rig.p().RunToCompletion();
  CHECK(done == expected);
  ChatterRun run;
  run.span = rig.p().sim().Now() - t0;
  run.stats = rig.p().TotalKernelStats();
  return run;
}

void AblationCapBatching() {
  bench::Header("Ablation (e): capability-IKC batching (--cap-batching)",
                "paper §5.3.2 / Figure 8: kernels are \"mostly handling capability "
                "operations\" — coalescing that chatter is the before/after here");
  std::printf("%-10s %12s %12s %9s %9s %9s %8s %10s\n", "kernels", "off [us]", "on [us]",
              "IKC off", "IKC on", "batches", "ops/b", "DDL hit%");
  for (uint32_t kernels : bench::Sweep<uint32_t>({4, 8, 16, 32})) {
    ChatterRun off = ObtainStorm(kernels, 0);
    ChatterRun on = ObtainStorm(kernels, 1);
    double ops_per_batch = on.stats.ikc_batches_sent == 0
                               ? 0.0
                               : double(on.stats.ikc_batched_ops) /
                                     double(on.stats.ikc_batches_sent);
    uint64_t probes = on.stats.ddl_cache_hits + on.stats.ddl_cache_misses;
    std::printf("%-10u %12.2f %12.2f %9llu %9llu %9llu %8.1f %9.1f%%\n", kernels,
                CyclesToMicros(off.span), CyclesToMicros(on.span),
                (unsigned long long)off.stats.ikc_sent, (unsigned long long)on.stats.ikc_sent,
                (unsigned long long)on.stats.ikc_batches_sent, ops_per_batch,
                probes == 0 ? 0.0 : 100.0 * double(on.stats.ddl_cache_hits) / double(probes));
  }
  bench::Footnote("off is the committed legacy baseline protocol (bit-identical to "
                  "bench-results/baseline-legacy); on folds same-peer requests into "
                  "kCapBatch containers and serves repeat remote-DDL decodes from the "
                  "epoch-invalidated cache");
}

void BM_CapBatchingObtainStorm(benchmark::State& state) {
  int cap_batching = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ChatterRun run = ObtainStorm(16, cap_batching);
    WorkloadResult out;
    out.Add("ikc_sent", double(run.stats.ikc_sent));
    out.Add("ikc_batches_sent", double(run.stats.ikc_batches_sent));
    out.Add("ikc_batched_ops", double(run.stats.ikc_batched_ops));
    out.Add("ddl_cache_hits", double(run.stats.ddl_cache_hits));
    bench::Report(state, run.span, out);
  }
  state.SetLabel(cap_batching != 0 ? "cap-batching=on" : "cap-batching=off");
}
BENCHMARK(BM_CapBatchingObtainStorm)->Arg(0)->Arg(1)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

void BM_TreeRevokeBatched(benchmark::State& state) {
  bool batched = state.range(0) != 0;
  for (auto _ : state) {
    bench::ReportSpan(state, TreeRevoke(96, batched));
  }
  state.SetLabel(batched ? "batched" : "unbatched");
}
BENCHMARK(BM_TreeRevokeBatched)->Arg(0)->Arg(1)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::AblationBatching, semperos::AblationDdl, semperos::AblationInflight, semperos::AblationContention, semperos::AblationCapBatching)
