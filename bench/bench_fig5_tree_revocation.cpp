// Figure 5: parallel revocation of capability trees with different breadths
// utilizing multiple kernels.
//
// "This microbenchmark resembles a situation in which an application
// exchanges a capability with many other applications, for example, to
// establish shared memory. ... The line labeled with 1 + 0 Kernels
// represents the local scenario ... for all other lines, the second number
// indicates the number of kernels the child capabilities have been
// distributed to. ... It currently leads to a break-even at 80 child
// capabilities, when comparing the local revocation time with a parallel
// revocation with 12 kernels." (paper §5.2)
//
// Every child activates its capability copy, so revocation includes the
// DTU-endpoint invalidations of the shared-memory scenario.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "system/client.h"

namespace semperos {
namespace {

// Root VPE in kernel 0's group; `child_holders` VPEs spread over the
// remaining kernels hold the copies.
Cycles RevokeTree(uint32_t extra_kernels, uint32_t children) {
  uint32_t kernels = 1 + extra_kernels;
  // One holder VPE per child keeps the scenario of "many other
  // applications". The platform distributes holders round-robin over all
  // groups; with extra kernels most children live remotely.
  DriverRig rig = MakeDriverRig(kernels, children + 1);
  CapSel root = rig.BuildTree(children);
  return rig.TimedOp([&](std::function<void()> done) {
    rig.client(0).env().Revoke(root, [done](const SyscallReply& r) {
      CHECK(r.err == ErrCode::kOk);
      done();
    });
  });
}

std::vector<uint32_t> Breadths() {
  return bench::Sweep<uint32_t>({16, 32, 48, 64, 80, 96, 112, 128});
}

const std::vector<uint32_t> kExtraKernels = {0, 1, 4, 8, 12};

void PrintFigure() {
  bench::Header("Figure 5: Parallel revocation of capability trees",
                "Hille et al., SemperOS (ATC'19), Figure 5");
  std::printf("%-8s", "children");
  for (uint32_t k : kExtraKernels) {
    std::printf("   1+%-2u kernels", k);
  }
  std::printf("   [revocation time, us]\n");

  std::vector<std::vector<double>> series(kExtraKernels.size());
  std::vector<uint32_t> breadths = Breadths();
  for (uint32_t n : breadths) {
    std::printf("%-8u", n);
    for (size_t i = 0; i < kExtraKernels.size(); ++i) {
      Cycles t = RevokeTree(kExtraKernels[i], n);
      series[i].push_back(CyclesToMicros(t));
      std::printf("   %12.2f", CyclesToMicros(t));
    }
    std::printf("\n");
  }

  // Break-even: where the 1+12 configuration becomes faster than 1+0.
  std::printf("\n  shape check (paper: break-even at ~80 children for 1+12 kernels):\n");
  for (size_t i = 0; i < breadths.size(); ++i) {
    if (series.back()[i] < series.front()[i]) {
      std::printf("  - 1+12 kernels beat the local revoke from %u children on\n", breadths[i]);
      return;
    }
  }
  std::printf("  - 1+12 kernels did not reach break-even within 128 children\n");
}

void BM_TreeRevokeLocal(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    bench::ReportSpan(state, RevokeTree(0, n));
  }
}
BENCHMARK(BM_TreeRevokeLocal)->Arg(32)->Arg(128)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

void BM_TreeRevokeTwelveKernels(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    bench::ReportSpan(state, RevokeTree(12, n));
  }
}
BENCHMARK(BM_TreeRevokeTwelveKernels)->Arg(32)->Arg(128)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::PrintFigure)
