// Migration benchmark: the cost of dynamic PE-group membership.
//
// The paper kept the membership table static; this repo adds epoch-versioned
// membership and live PE migration (see docs/architecture.md, "Dynamic
// PE-group membership"). Three questions are measured:
//   1. handoff latency vs. the number of capabilities in the moving
//      partition (pack + install scale linearly);
//   2. handoff latency vs. kernel count (the EPOCH_UPDATE settle round
//      broadcasts to every kernel);
//   3. what a mid-run rebalancing costs a loaded system: throughput in
//      equal windows before / during / after draining hot PEs, plus the
//      forwarded-IKC and frozen-syscall counts of the stale-epoch window.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "system/client.h"
#include "system/experiment.h"

namespace semperos {
namespace {

// Builds a rig with one client per kernel, gives client 0 a partition of
// `caps` capabilities (root + derived children), and migrates client 0's PE
// to the last kernel. Returns the handoff latency in cycles.
Cycles MigrateOnce(uint32_t kernels, uint32_t caps) {
  DriverRig rig = MakeDriverRig(kernels, kernels);
  CapSel root = rig.Grant(0);
  for (uint32_t i = 1; i < caps; ++i) {
    bool ok = false;
    rig.client(0).env().DeriveMem(root, 0, 256, kPermR, [&ok](const SyscallReply& r) {
      CHECK(r.err == ErrCode::kOk);
      ok = true;
    });
    rig.p().RunToCompletion();
    CHECK(ok);
  }
  return rig.Migrate(rig.vpe(0), kernels - 1);
}

std::vector<uint32_t> CapCounts() {
  return bench::Sweep<uint32_t>({1, 8, 32, 64, 128, 256});
}

std::vector<uint32_t> KernelCounts() {
  return bench::Sweep<uint32_t>({2, 4, 8, 16, 32});
}

void PrintFigure() {
  bench::Header("Migration: PE handoff latency and rebalancing cost",
                "extension of Hille et al., SemperOS (ATC'19) — dynamic membership");

  std::printf("%-12s %20s\n", "partition", "handoff latency");
  std::printf("%-12s %20s\n", "[caps]", "[K cycles]");
  for (uint32_t caps : CapCounts()) {
    Cycles latency = MigrateOnce(2, caps);
    std::printf("%-12u %20.1f\n", caps, latency / 1000.0);
  }

  std::printf("\n%-12s %20s\n", "kernels", "handoff latency");
  std::printf("%-12s %20s\n", "", "[K cycles]");
  for (uint32_t kernels : KernelCounts()) {
    Cycles latency = MigrateOnce(kernels, 32);
    std::printf("%-12u %20.1f\n", kernels, latency / 1000.0);
  }

  std::printf("\n%-8s %12s %12s %12s %12s %10s %10s\n", "group", "before", "during", "after",
              "dip", "forwarded", "frozen");
  std::printf("%-8s %12s %12s %12s %12s %10s %10s\n", "size", "[Kops/s]", "[Kops/s]", "[Kops/s]",
              "[%]", "[IKCs]", "[calls]");
  for (uint32_t users : bench::Sweep<uint32_t>({2, 4, 8})) {
    RebalanceConfig config;
    config.kernels = 4;
    config.users_per_kernel = users;
    config.ops_per_client = 30;
    config.migrate_pes = users / 2 > 0 ? users / 2 : 1;
    RebalanceResult r = RunRebalance(config);
    double dip = r.ops_per_sec_before > 0
                     ? 100.0 * (1.0 - r.ops_per_sec_during / r.ops_per_sec_before)
                     : 0.0;
    std::printf("%-8u %12.1f %12.1f %12.1f %12.1f %10llu %10llu\n", users,
                r.ops_per_sec_before / 1000.0, r.ops_per_sec_during / 1000.0,
                r.ops_per_sec_after / 1000.0, dip,
                static_cast<unsigned long long>(r.forwarded_ikcs),
                static_cast<unsigned long long>(r.frozen_syscalls));
    CHECK(r.leaked_caps == 0) << "rebalancing leaked capabilities";
  }
  bench::Footnote("dip = throughput lost while the rebalancer drains hot PEs");
}

void BM_MigrationLatencyVsCaps(benchmark::State& state) {
  uint32_t caps = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    bench::ReportSpan(state, MigrateOnce(2, caps));
  }
}
BENCHMARK(BM_MigrationLatencyVsCaps)->Arg(8)->Arg(64)->Arg(256)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

void BM_MigrationLatencyVsKernels(benchmark::State& state) {
  uint32_t kernels = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    bench::ReportSpan(state, MigrateOnce(kernels, 32));
  }
}
BENCHMARK(BM_MigrationLatencyVsKernels)->Arg(2)->Arg(8)->Arg(32)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

void BM_RebalanceMakespan(benchmark::State& state) {
  uint32_t users = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    RebalanceConfig config;
    config.kernels = 4;
    config.users_per_kernel = users;
    config.ops_per_client = 30;
    config.migrate_pes = users / 2 > 0 ? users / 2 : 1;
    RebalanceResult r = RunRebalance(config);
    WorkloadResult out;
    out.Add("ops_per_sec", r.ops_per_sec);
    out.Add("migration_latency_us", CyclesToMicros(r.migration_latency_max), "us");
    out.Add("forwarded_ikcs", static_cast<double>(r.forwarded_ikcs));
    bench::Report(state, r.makespan, out);
  }
}
BENCHMARK(BM_RebalanceMakespan)->Arg(2)->Arg(4)->Arg(8)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::PrintFigure)
