// Failover benchmark: the cost of surviving a kernel crash.
//
// The paper's platform has no fault model; this repo adds kernel failure
// injection, heartbeat/quorum detection, and distributed capability-tree
// recovery (src/ft, docs/architecture.md §5). Three questions are measured:
//   1. recovery latency vs. the number of orphaned capabilities the
//      survivors must revoke (the repair pass scales with the subtrees the
//      dead kernel's VPEs had shared out);
//   2. recovery latency vs. kernel count (verdict decree broadcast plus
//      per-survivor takeover of the re-partitioned DDL range);
//   3. what a mid-run crash costs a loaded system: throughput in equal
//      windows before / during / after the kill-to-recovered span, plus
//      detection latency and the repair counters.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "system/experiment.h"

namespace semperos {
namespace {

// One kill-and-recover run sized for latency measurements: one client per
// kernel, `caps` capabilities seeded from the victim group (these become
// the orphaned subtrees), minimal loop traffic. The kill waits out the
// seeding phase, which serializes ~25k cycles per seeded capability.
FailoverResult MeasureFailover(uint32_t kernels, uint32_t caps) {
  FailoverConfig config;
  config.kernels = kernels;
  config.users_per_kernel = 1;
  config.ops_per_client = 4;
  config.orphan_caps = caps;
  config.activate_caps = caps < 4 ? caps : 4;
  config.kill_at = 400'000 + static_cast<Cycles>(caps) * 30'000;
  FailoverResult r = RunFailover(config);
  CHECK(r.recovered) << "failover did not recover";
  CHECK(r.leaked_caps == 0) << "failover leaked capabilities";
  return r;
}

std::vector<uint32_t> CapCounts() { return bench::Sweep<uint32_t>({1, 8, 32, 64, 128, 256}); }

std::vector<uint32_t> KernelCounts() { return bench::Sweep<uint32_t>({3, 4, 8, 16, 32}); }

void PrintFigure() {
  bench::Header("Failover: kernel-crash detection and recovery cost",
                "extension of Hille et al., SemperOS (ATC'19) — fault tolerance");

  std::printf("%-12s %16s %16s\n", "orphaned", "detect latency", "recover latency");
  std::printf("%-12s %16s %16s\n", "[caps]", "[K cycles]", "[K cycles]");
  for (uint32_t caps : CapCounts()) {
    FailoverResult r = MeasureFailover(4, caps);
    std::printf("%-12u %16.1f %16.1f\n", caps, r.detect_latency / 1000.0,
                r.recover_latency / 1000.0);
  }

  std::printf("\n%-12s %16s %16s\n", "kernels", "detect latency", "recover latency");
  for (uint32_t kernels : KernelCounts()) {
    FailoverResult r = MeasureFailover(kernels, 32);
    std::printf("%-12u %16.1f %16.1f\n", kernels, r.detect_latency / 1000.0,
                r.recover_latency / 1000.0);
  }

  std::printf("\n%-8s %12s %12s %12s %12s %10s %10s\n", "group", "before", "during", "after",
              "dip", "orphans", "retries");
  std::printf("%-8s %12s %12s %12s %12s %10s %10s\n", "size", "[Kops/s]", "[Kops/s]", "[Kops/s]",
              "[%]", "[roots]", "[calls]");
  for (uint32_t users : bench::Sweep<uint32_t>({2, 4, 8})) {
    FailoverConfig config;
    config.kernels = 4;
    config.users_per_kernel = users;
    config.ops_per_client = 30;
    FailoverResult r = RunFailover(config);
    double dip = r.ops_per_sec_before > 0
                     ? 100.0 * (1.0 - r.ops_per_sec_during / r.ops_per_sec_before)
                     : 0.0;
    std::printf("%-8u %12.1f %12.1f %12.1f %12.1f %10llu %10llu\n", users,
                r.ops_per_sec_before / 1000.0, r.ops_per_sec_during / 1000.0,
                r.ops_per_sec_after / 1000.0, dip,
                static_cast<unsigned long long>(r.orphan_roots),
                static_cast<unsigned long long>(r.client_retries));
    CHECK(r.recovered) << "failover did not recover";
    CHECK(r.leaked_caps == 0) << "failover leaked capabilities";
  }
  bench::Footnote("dip = throughput lost between the kill and the last survivor's recovery");
}

void BM_FailoverRecoveryVsCaps(benchmark::State& state) {
  uint32_t caps = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    FailoverResult r = MeasureFailover(4, caps);
    WorkloadResult out;
    out.Add("detect_latency_us", CyclesToMicros(r.detect_latency), "us");
    out.Add("orphan_roots", static_cast<double>(r.orphan_roots));
    bench::Report(state, r.recover_latency, out);
  }
}
BENCHMARK(BM_FailoverRecoveryVsCaps)->Arg(8)->Arg(64)->Arg(256)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

void BM_FailoverRecoveryVsKernels(benchmark::State& state) {
  uint32_t kernels = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    FailoverResult r = MeasureFailover(kernels, 32);
    WorkloadResult out;
    out.Add("detect_latency_us", CyclesToMicros(r.detect_latency), "us");
    bench::Report(state, r.recover_latency, out);
  }
}
BENCHMARK(BM_FailoverRecoveryVsKernels)->Arg(3)->Arg(8)->Arg(32)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

void BM_FailoverMakespan(benchmark::State& state) {
  uint32_t users = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    FailoverConfig config;
    config.kernels = 4;
    config.users_per_kernel = users;
    config.ops_per_client = 30;
    FailoverResult r = RunFailover(config);
    WorkloadResult out;
    out.Add("ops_per_sec", r.ops_per_sec);
    out.Add("recover_latency_us", CyclesToMicros(r.recover_latency), "us");
    out.Add("client_retries", static_cast<double>(r.client_retries));
    bench::Report(state, r.makespan, out);
  }
}
BENCHMARK(BM_FailoverMakespan)->Arg(2)->Arg(4)->Arg(8)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semperos

SEMPEROS_BENCH_MAIN(semperos::PrintFigure)
