// Engine-room microbenchmark: wall-clock throughput of the simulator
// substrate itself.
//
// Unlike every other bench binary, this one measures HOST time, not
// simulated time: it tracks how fast the discrete-event engine executes
// (events/sec through the indexed 4-ary heap + InlineFn callbacks) and how
// fast the NoC+DTU stack moves messages (messages/sec including pooled
// body allocation, tag dispatch and per-link reservation). Every figure
// sweep is bounded by these two rates, so regressions here show up as
// wall-clock regressions everywhere (see docs/benchmarks.md, "Wall-clock
// vs modeled cycles").
//
// Compare runs with:  tools/bench_compare.py OLD NEW --wallclock
// (generous tolerance; host timing is noisy where simulated time is not).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>

#include "dtu/dtu.h"
#include "dtu/msg_pool.h"
#include "noc/noc.h"
#include "sim/simulation.h"
#include "system/experiment.h"

namespace semperos {
namespace {

// Message-sized event payload: the engine's typical closure captures a
// Message (~40 bytes) plus a few scalars. Copying itself into the next
// Schedule exercises exactly the path every handler-chain takes.
struct ChainEvent {
  Simulation* sim;
  uint64_t* remaining;
  uint64_t payload[5] = {0, 1, 2, 3, 4};

  void operator()() const {
    if (*remaining == 0) {
      return;
    }
    --*remaining;
    sim->Schedule(1 + payload[*remaining % 5], *this);
  }
};

// Events/sec: 64 interleaved self-rescheduling chains drain a fixed event
// budget. Heap size stays at ~64 pending events with constant churn — the
// steady-state shape of a running platform.
void BM_EventChurn(benchmark::State& state) {
  constexpr uint64_t kEvents = 1'000'000;
  uint64_t total = 0;
  for (auto _ : state) {
    Simulation sim;
    uint64_t remaining = kEvents;
    for (int chain = 0; chain < 64; ++chain) {
      sim.Schedule(static_cast<Cycles>(chain), ChainEvent{&sim, &remaining});
    }
    sim.RunUntilIdle();
    total += sim.EventsRun();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
}

struct PingMsg : MsgBody {
  static constexpr MsgKind kKind = MsgKind::kTest;
  PingMsg() : MsgBody(kKind) {}
};

// Messages/sec: a credit-limited ping-pong between two DTUs across a small
// mesh. Each round trip allocates two pooled bodies, reserves NoC links,
// delivers into receive slots and returns a credit — the full per-message
// cost the kernels pay on every syscall and IKC.
void BM_MessageDelivery(benchmark::State& state) {
  constexpr uint64_t kRoundTrips = 200'000;
  constexpr uint32_t kPipeline = 8;
  uint64_t total = 0;
  for (auto _ : state) {
    Simulation sim;
    NocConfig noc_config;
    noc_config.width = 4;
    noc_config.height = 1;
    Noc noc(&sim, noc_config);
    DtuFabric fabric(&noc);
    Dtu a(&sim, &fabric, 0);
    Dtu b(&sim, &fabric, 3);

    uint64_t sent = 0;
    a.ConfigureSend(/*ep=*/0, /*dst_node=*/3, /*dst_ep=*/0, /*credits=*/kPipeline);
    a.ConfigureRecv(/*ep=*/1, kPipeline, [&](EpId, const Message&) {
      if (sent < kRoundTrips) {
        ++sent;
        CHECK(a.Send(0, NewMsg<PingMsg>(), /*reply_ep=*/1).ok());
      }
    });
    b.ConfigureRecv(/*ep=*/0, 32, [&](EpId ep, const Message& msg) {
      CHECK(msg.As<PingMsg>() != nullptr);
      CHECK(b.Reply(ep, msg, NewMsg<PingMsg>()).ok());
    });
    for (uint32_t i = 0; i < kPipeline; ++i) {
      ++sent;
      CHECK(a.Send(0, NewMsg<PingMsg>(), /*reply_ep=*/1).ok());
    }
    sim.RunUntilIdle();
    CHECK_EQ(a.stats().msgs_dropped + b.stats().msgs_dropped, 0u);
    total += a.stats().msgs_sent + b.stats().msgs_sent;
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["messages_per_sec"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_EventChurn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MessageDelivery)->Unit(benchmark::kMillisecond);

// Thread-scaling sweep: the 1024-instance/64-kernel PostMark scale point
// (1153 PEs, full fidelity — the workload that saturates one host core on
// the serial engine) on the sharded parallel engine at 1/2/4/8 worker
// threads. Modeled results are bit-identical across the whole sweep (the
// run CHECKs events and makespan against the 1-thread row); the counters
// report host throughput: events_per_sec and speedup_vs_1t. On a
// single-core host the sweep degrades gracefully (speedup < 1: barrier
// handshakes buy nothing without parallel hardware) — scaling numbers are
// meaningful on >= 4-core machines; see docs/benchmarks.md.
void BM_ScalePointPostmark1024Threads(benchmark::State& state) {
  static uint64_t base_events = 0;   // 1-thread row pins the modeled outputs
  static uint64_t base_makespan = 0;
  static double base_eps = 0;        // 1-thread events/sec (speedup baseline)
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  uint64_t events = 0;
  double eps = 0;
  for (auto _ : state) {
    AppRunConfig config;
    config.app = "postmark";
    config.kernels = 64;
    config.services = 64;
    config.instances = 1024;
    // Row 1 pins the serial engine even under SEMPEROS_THREADS, so the
    // sweep's speedup baseline is always the real serial throughput.
    config.threads = threads == 1 ? kForceSerialThreads : threads;
    auto t0 = std::chrono::steady_clock::now();
    AppRunResult result = RunApp(config);
    double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    events = result.events;
    eps = static_cast<double>(result.events) / wall;
    if (threads == 1) {
      base_events = result.events;
      base_makespan = result.makespan;
      base_eps = eps;
    } else if (base_events != 0) {
      // The engine's contract, enforced on every sweep run: sharding must
      // not change the model. (base_events == 0 means a --benchmark_filter
      // skipped the 1-thread row; nothing to compare against then.)
      CHECK_EQ(result.events, base_events) << "threads=" << threads;
      CHECK_EQ(result.makespan, base_makespan) << "threads=" << threads;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["events_per_sec"] = eps;
  if (base_eps > 0) {
    state.counters["speedup_vs_1t"] = eps / base_eps;
  }
}
BENCHMARK(BM_ScalePointPostmark1024Threads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semperos

BENCHMARK_MAIN();
